package workloads

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"mrapid/internal/hdfs"
	"mrapid/internal/mapreduce"
	"mrapid/internal/topology"
)

// PiSampleRate is the quasi-Monte-Carlo sampling throughput per reference
// core, calibrated to the 2013-era JVM PiEstimator (~10M Halton points per
// second).
const PiSampleRate = 10e6

// PiMaxRealSamples caps how many Halton points each map actually evaluates.
// The paper's sweeps reach 1.6 billion samples, which the virtual clock
// charges in full via SplitCost, but evaluating them for real would burn
// minutes of host CPU for no extra fidelity — the estimate converges long
// before the cap. This is the simulation/reality split documented in
// DESIGN.md: cost is charged for the full count, the numeric answer uses up
// to this many real points.
const PiMaxRealSamples = 200_000

// PiConfig controls one PI run: Maps tasks, Samples points per map.
type PiConfig struct {
	Maps    int
	Samples int64
}

// GeneratePiInput writes the tiny per-map control files (offset and sample
// count), one per map task, the way PiEstimator stages its inputs.
func GeneratePiInput(dfs *hdfs.DFS, cluster *topology.Cluster, prefix string, cfg PiConfig) ([]string, error) {
	if cfg.Maps <= 0 || cfg.Samples <= 0 {
		return nil, fmt.Errorf("workloads: pi needs positive maps and samples, got %d/%d", cfg.Maps, cfg.Samples)
	}
	workers := cluster.Workers()
	var names []string
	for i := 0; i < cfg.Maps; i++ {
		name := InputFileName(prefix, i)
		content := fmt.Sprintf("%d,%d\n", int64(i)*cfg.Samples, cfg.Samples)
		if _, err := dfs.PutInstant(name, []byte(content), workers[i%len(workers)]); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}

// PiSpec builds the PI estimation job. The map's virtual compute cost is
// its full sample count at PiSampleRate; its real computation evaluates up
// to PiMaxRealSamples Halton points.
func PiSpec(dfs *hdfs.DFS, name string, inputs []string, output string) *mapreduce.JobSpec {
	return &mapreduce.JobSpec{
		Name:       name,
		JobKey:     "pi",
		InputFiles: inputs,
		OutputFile: output,
		NumReduces: 1,
		Format:     mapreduce.LineFormat{},
		Map:        piMap,
		Reduce:     piReduce,
		SplitCost: func(s *hdfs.Split) time.Duration {
			_, samples, err := parsePiControl(dfs, s)
			if err != nil {
				return 0
			}
			return time.Duration(float64(samples) / PiSampleRate * float64(time.Second))
		},
	}
}

// parsePiControl reads a PI control file's (offset, samples) pair.
func parsePiControl(dfs *hdfs.DFS, s *hdfs.Split) (offset, samples int64, err error) {
	data, err := dfs.Contents(s.File)
	if err != nil {
		return 0, 0, err
	}
	return parsePiLine(data)
}

func parsePiLine(data []byte) (offset, samples int64, err error) {
	parts := strings.SplitN(strings.TrimSpace(string(data)), ",", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("workloads: malformed pi control %q", data)
	}
	offset, err = strconv.ParseInt(parts[0], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	samples, err = strconv.ParseInt(parts[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	return offset, samples, nil
}

func piMap(_, line []byte, emit mapreduce.Emit) {
	offset, samples, err := parsePiLine(line)
	if err != nil {
		panic(err)
	}
	evaluated := samples
	if evaluated > PiMaxRealSamples {
		evaluated = PiMaxRealSamples
	}
	var inside, outside int64
	h := newHalton(offset)
	for i := int64(0); i < evaluated; i++ {
		x, y := h.next()
		dx, dy := x-0.5, y-0.5
		if dx*dx+dy*dy <= 0.25 {
			inside++
		} else {
			outside++
		}
	}
	// Scale the real counts back to the full virtual sample count so the
	// final estimate reflects the requested precision's sample total.
	if evaluated < samples && evaluated > 0 {
		scale := float64(samples) / float64(evaluated)
		inside = int64(float64(inside) * scale)
		outside = samples - inside
	}
	emit([]byte("inside"), []byte(strconv.FormatInt(inside, 10)))
	emit([]byte("outside"), []byte(strconv.FormatInt(outside, 10)))
}

func piReduce(key []byte, values [][]byte, emit mapreduce.Emit) {
	var total int64
	for _, v := range values {
		n, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			panic(err)
		}
		total += n
	}
	emit(key, []byte(strconv.FormatInt(total, 10)))
}

// PiEstimate decodes the job output into the final π estimate.
func PiEstimate(dfs *hdfs.DFS, output string) (float64, error) {
	data, err := dfs.Contents(mapreduce.PartFileName(output, 0))
	if err != nil {
		return 0, err
	}
	var inside, outside int64
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		parts := strings.SplitN(line, "\t", 2)
		if len(parts) != 2 {
			continue
		}
		n, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			return 0, err
		}
		switch parts[0] {
		case "inside":
			inside = n
		case "outside":
			outside = n
		}
	}
	if inside+outside == 0 {
		return 0, fmt.Errorf("workloads: pi output empty")
	}
	return 4 * float64(inside) / float64(inside+outside), nil
}

// halton generates the 2-D Halton low-discrepancy sequence (bases 2 and 3),
// the same quasi-random point set Hadoop's PiEstimator uses.
type halton struct{ index int64 }

func newHalton(start int64) *halton { return &halton{index: start} }

func (h *halton) next() (x, y float64) {
	h.index++
	return radicalInverse(h.index, 2), radicalInverse(h.index, 3)
}

// radicalInverse reflects n's base-b digits around the radix point.
func radicalInverse(n int64, b int64) float64 {
	var v float64
	inv := 1.0 / float64(b)
	f := inv
	for n > 0 {
		v += float64(n%b) * f
		n /= b
		f *= inv
	}
	return v
}
