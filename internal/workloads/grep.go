package workloads

import (
	"bytes"
	"fmt"
	"strconv"

	"mrapid/internal/hdfs"
	"mrapid/internal/mapreduce"
)

// Grep reproduces the Hadoop example Grep program: two chained MapReduce
// jobs. The first (search) counts every occurrence of a literal pattern's
// containing words; the second (sort) orders the matches by descending
// count. The chain is exactly the kind of multi-job short workload the
// MRapid submission framework exists for — the second job is tiny and pure
// overhead under stock Hadoop.
const (
	GrepMapRate    = 10e6 // substring scan is cheaper than tokenizing
	GrepReduceRate = 40e6
)

// GrepSearchSpec builds the first job: emit (word, 1) for every
// whitespace-separated token containing pattern; reduce sums counts. The
// sum combiner is associative, so it is valid both per task and cross-task
// (the shuffle service's in-node combiner re-applies it when merging a
// node's outputs). The sort job below deliberately has no combiner: its
// reduce re-keys each record, which a combiner must never do.
func GrepSearchSpec(name string, inputs []string, output, pattern string) *mapreduce.JobSpec {
	pat := []byte(pattern)
	return &mapreduce.JobSpec{
		Name:       name,
		JobKey:     "grep-search",
		InputFiles: inputs,
		OutputFile: output,
		NumReduces: 1,
		Format:     mapreduce.LineFormat{},
		Map: func(_, line []byte, emit mapreduce.Emit) {
			for _, w := range bytes.Fields(line) {
				if bytes.Contains(w, pat) {
					emit(w, one)
				}
			}
		},
		Combine:    wordCountReduce,
		Reduce:     wordCountReduce,
		MapRate:    GrepMapRate,
		ReduceRate: GrepReduceRate,
	}
}

// GrepSortSpec builds the second job over the first job's output: re-key
// each (word, count) line by an order-inverted fixed-width count so the
// single reducer's sorted order is descending by count (Hadoop's Grep uses
// a decreasing comparator; an order-inverting key encodes the same thing in
// our runtime).
func GrepSortSpec(name string, searchOutput []string, output string) *mapreduce.JobSpec {
	return &mapreduce.JobSpec{
		Name:       name,
		JobKey:     "grep-sort",
		InputFiles: searchOutput,
		OutputFile: output,
		NumReduces: 1,
		Format:     mapreduce.LineFormat{},
		Map: func(_, line []byte, emit mapreduce.Emit) {
			i := bytes.IndexByte(line, '\t')
			if i < 0 {
				return
			}
			word, countText := line[:i], line[i+1:]
			n, err := strconv.ParseInt(string(countText), 10, 64)
			if err != nil {
				return
			}
			// Larger counts must sort first: key on MaxInt64 - n, zero
			// padded to fixed width.
			key := fmt.Sprintf("%019d", int64(1<<62)-n)
			emit([]byte(key), append(append([]byte{}, countText...), append([]byte("\t"), word...)...))
		},
		Reduce: func(_ []byte, values [][]byte, emit mapreduce.Emit) {
			for _, v := range values {
				i := bytes.IndexByte(v, '\t')
				emit(v[:i], v[i+1:]) // (count, word) lines, descending
			}
		},
		MapRate:    GrepMapRate,
		ReduceRate: GrepReduceRate,
	}
}

// GrepMatch is one (count, word) result row.
type GrepMatch struct {
	Word  string
	Count int64
}

// ParseGrepOutput decodes the sort job's output into descending matches.
func ParseGrepOutput(dfs *hdfs.DFS, output string) ([]GrepMatch, error) {
	data, err := dfs.Contents(mapreduce.PartFileName(output, 0))
	if err != nil {
		return nil, err
	}
	var out []GrepMatch
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		i := bytes.IndexByte(line, '\t')
		if i < 0 {
			return nil, fmt.Errorf("workloads: malformed grep line %q", line)
		}
		n, err := strconv.ParseInt(string(line[:i]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workloads: malformed grep count in %q", line)
		}
		out = append(out, GrepMatch{Word: string(line[i+1:]), Count: n})
	}
	for i := 1; i < len(out); i++ {
		if out[i].Count > out[i-1].Count {
			return nil, fmt.Errorf("workloads: grep output not descending at %d", i)
		}
	}
	return out, nil
}
