package workloads

import (
	"bytes"
	"fmt"
	"strconv"

	"mrapid/internal/hdfs"
	"mrapid/internal/mapreduce"
	"mrapid/internal/topology"
)

// WordCount compute rates, calibrated to a 2013-era JVM WordCount: the map
// side tokenizes ~1.8 MB/s per core on the A-series (cold JVM, blob-backed storage, per-record framework overhead);
// the reduce side merely sums pre-grouped counts and streams at ~60 MB/s.
const (
	WordCountMapRate    = 1.8e6
	WordCountReduceRate = 60e6
)

// WordCountConfig controls input synthesis for one WordCount run.
type WordCountConfig struct {
	Files     int   // number of input files
	FileBytes int64 // size of each file
	VocabSize int   // distinct words in the corpus (default 30000)
	Seed      int64
	Combiner  bool // enable the map-side combiner
}

// GenerateWordCountInput stages the input files into HDFS (costlessly, as
// experiment setup) and returns their names. Each file lands on a distinct
// starting DataNode when possible, round-robin, the way a prior TeraGen-like
// job would have spread them.
func GenerateWordCountInput(dfs *hdfs.DFS, cluster *topology.Cluster, prefix string, cfg WordCountConfig) ([]string, error) {
	if cfg.Files <= 0 || cfg.FileBytes <= 0 {
		return nil, fmt.Errorf("workloads: wordcount needs positive files and size, got %d × %d", cfg.Files, cfg.FileBytes)
	}
	vocab := cfg.VocabSize
	if vocab == 0 {
		vocab = 30000
	}
	// One long deterministic stream per (vocab, seed), cut into per-file
	// chunks at line boundaries. Cached across runs: every experiment that
	// asks for the same configuration gets byte-identical files.
	stream := corpusStream(vocab, cfg.Seed, int64(cfg.Files)*(cfg.FileBytes+256))
	workers := cluster.Workers()
	var names []string
	for i := 0; i < cfg.Files; i++ {
		name := InputFileName(prefix, i)
		writer := workers[i%len(workers)]
		chunk := cutAtLine(stream, cfg.FileBytes)
		stream = stream[len(chunk):]
		if _, err := dfs.PutInstant(name, chunk, writer); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	return names, nil
}

// WordCountSpec builds the WordCount job over the given input files.
func WordCountSpec(name string, inputs []string, output string, combiner bool) *mapreduce.JobSpec {
	spec := &mapreduce.JobSpec{
		Name:       name,
		JobKey:     "wordcount",
		InputFiles: inputs,
		OutputFile: output,
		NumReduces: 1,
		Format:     mapreduce.LineFormat{},
		Map:        wordCountMap,
		Reduce:     wordCountReduce,
		MapRate:    WordCountMapRate,
		ReduceRate: WordCountReduceRate,
	}
	if combiner {
		spec.Combine = wordCountReduce
	}
	return spec
}

var one = []byte("1")

func wordCountMap(_, line []byte, emit mapreduce.Emit) {
	// Manual tokenization: bytes.Fields would allocate a fresh slice of
	// slices per line, and this function runs over every byte of every
	// experiment's input.
	start := -1
	for i, c := range line {
		if c == ' ' || c == '\t' {
			if start >= 0 {
				emit(line[start:i], one)
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		emit(line[start:], one)
	}
}

func wordCountReduce(key []byte, values [][]byte, emit mapreduce.Emit) {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(string(v))
		if err != nil {
			panic(fmt.Sprintf("workloads: wordcount got non-numeric count %q", v))
		}
		total += n
	}
	emit(key, []byte(strconv.Itoa(total)))
}

// CountWords computes the reference answer directly, for output
// verification in tests.
func CountWords(data []byte) map[string]int {
	counts := make(map[string]int)
	for _, w := range bytes.Fields(data) {
		counts[string(w)]++
	}
	return counts
}

// ParseWordCountOutput decodes the job's part file back into a count map.
func ParseWordCountOutput(data []byte) (map[string]int, error) {
	counts := make(map[string]int)
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		i := bytes.IndexByte(line, '\t')
		if i < 0 {
			return nil, fmt.Errorf("workloads: malformed wordcount line %q", line)
		}
		n, err := strconv.Atoi(string(line[i+1:]))
		if err != nil {
			return nil, fmt.Errorf("workloads: malformed count in %q", line)
		}
		counts[string(line[:i])] = n
	}
	return counts, nil
}
