package workloads

import (
	"bytes"
	"math"
	"strconv"
	"testing"
	"testing/quick"

	"mrapid/internal/costmodel"
	"mrapid/internal/hdfs"
	"mrapid/internal/mapreduce"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
)

func testDFS(t *testing.T) (*hdfs.DFS, *topology.Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	c, err := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: 4, Racks: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := costmodel.Default()
	return hdfs.New(eng, c, p.HDFSBlockBytes, p.Replication, 99), c
}

func TestCorpusDeterministic(t *testing.T) {
	a := NewCorpus(1000, 7).Generate(10_000)
	b := NewCorpus(1000, 7).Generate(10_000)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corpora")
	}
	c := NewCorpus(1000, 8).Generate(10_000)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestCorpusShape(t *testing.T) {
	data := NewCorpus(500, 1).Generate(5000)
	if int64(len(data)) < 5000 {
		t.Fatalf("generated %d bytes, want ≥ 5000", len(data))
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("corpus does not end at a line boundary")
	}
	words := bytes.Fields(data)
	if len(words) < 500 {
		t.Fatalf("only %d words", len(words))
	}
	distinct := map[string]bool{}
	for _, w := range words {
		distinct[string(w)] = true
	}
	if len(distinct) < 50 || len(distinct) > 500 {
		t.Fatalf("distinct words = %d, want within vocabulary bounds", len(distinct))
	}
}

// Property: parse(encode(counts)) round-trips through the job output format.
func TestQuickWordCountOutputRoundTrip(t *testing.T) {
	f := func(words []string) bool {
		var pairs []mapreduce.Pair
		want := map[string]int{}
		for i, w := range words {
			if w == "" || bytes.ContainsAny([]byte(w), "\t\n") {
				continue
			}
			pairs = append(pairs, mapreduce.Pair{Key: []byte(w), Value: []byte(strconv.Itoa(i + 1))})
			want[w] = i + 1
		}
		got, err := ParseWordCountOutput(mapreduce.EncodePairs(pairs))
		if err != nil {
			return false
		}
		if len(got) > len(want) {
			return false
		}
		for k, v := range got {
			if want[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCountWordsAgainstMapReduceFunctions(t *testing.T) {
	data := []byte("a b a\nc b a\n")
	want := CountWords(data)
	// Drive the map and reduce functions directly.
	var inter []mapreduce.Pair
	mapreduce.LineFormat{}.Scan(data, func(k, v []byte) {
		wordCountMap(k, v, func(key, val []byte) {
			inter = append(inter, mapreduce.Pair{Key: key, Value: val})
		})
	})
	byKey := map[string][][]byte{}
	for _, p := range inter {
		byKey[string(p.Key)] = append(byKey[string(p.Key)], p.Value)
	}
	got := map[string]int{}
	for k, vs := range byKey {
		wordCountReduce([]byte(k), vs, func(key, val []byte) {
			n, _ := strconv.Atoi(string(val))
			got[string(key)] = n
		})
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("count[%q] = %d, want %d", k, got[k], v)
		}
	}
}

func TestGenerateWordCountInput(t *testing.T) {
	d, c := testDFS(t)
	names, err := GenerateWordCountInput(d, c, "/in/wc", WordCountConfig{Files: 3, FileBytes: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("files = %d", len(names))
	}
	for _, n := range names {
		f, err := d.Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if f.Size() < 2000 {
			t.Errorf("%s size = %d", n, f.Size())
		}
	}
	if _, err := GenerateWordCountInput(d, c, "/bad", WordCountConfig{Files: 0, FileBytes: 10}); err == nil {
		t.Fatal("zero files did not error")
	}
}

func TestWordCountSpecValid(t *testing.T) {
	spec := WordCountSpec("wc", []string{"/in"}, "/out", true)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.Combine == nil {
		t.Fatal("combiner not set")
	}
	if spec.JobKey != "wordcount" {
		t.Fatalf("JobKey = %q", spec.JobKey)
	}
}

func TestTeraGenGeometry(t *testing.T) {
	d, c := testDFS(t)
	names, err := TeraGen(d, c, "/in/ts", TeraGenConfig{Rows: 1000, Files: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 {
		t.Fatalf("files = %d", len(names))
	}
	var total int64
	for _, n := range names {
		f, _ := d.Lookup(n)
		if f.Size()%TeraRowLen != 0 {
			t.Errorf("%s size %d not a multiple of the row length", n, f.Size())
		}
		total += f.Size() / TeraRowLen
	}
	if total != 1000 {
		t.Fatalf("total rows = %d", total)
	}
}

func TestTeraGenDeterministic(t *testing.T) {
	d1, c1 := testDFS(t)
	d2, c2 := testDFS(t)
	TeraGen(d1, c1, "/a", TeraGenConfig{Rows: 100, Files: 2, Seed: 9})
	TeraGen(d2, c2, "/a", TeraGenConfig{Rows: 100, Files: 2, Seed: 9})
	b1, _ := d1.Contents("/a/part-00000")
	b2, _ := d2.Contents("/a/part-00000")
	if !bytes.Equal(b1, b2) {
		t.Fatal("teragen not deterministic")
	}
}

func TestTotalOrderPartitioner(t *testing.T) {
	cuts := [][]byte{[]byte("ggg"), []byte("ppp")}
	part := totalOrderPartitioner(cuts)
	cases := []struct {
		key  string
		want int
	}{
		{"aaa", 0}, {"gga", 0}, {"ggg", 1}, {"mmm", 1}, {"ppp", 2}, {"zzz", 2},
	}
	for _, c := range cases {
		if got := part([]byte(c.key), 3); got != c.want {
			t.Errorf("partition(%q) = %d, want %d", c.key, got, c.want)
		}
	}
	// No cuts → everything to partition 0.
	if totalOrderPartitioner(nil)([]byte("x"), 1) != 0 {
		t.Error("nil cuts should map to 0")
	}
}

// Property: the total-order partitioner is monotone — sorted keys map to
// nondecreasing partitions.
func TestQuickTotalOrderMonotone(t *testing.T) {
	f := func(keys [][]byte, c1, c2 []byte) bool {
		cuts := [][]byte{c1, c2}
		if bytes.Compare(c1, c2) > 0 {
			cuts = [][]byte{c2, c1}
		}
		part := totalOrderPartitioner(cuts)
		sorted := make([][]byte, len(keys))
		copy(sorted, keys)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && bytes.Compare(sorted[j], sorted[j-1]) < 0; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		prev := -1
		for _, k := range sorted {
			p := part(k, 3)
			if p < prev || p < 0 || p > 2 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTeraSortSpecSampling(t *testing.T) {
	d, c := testDFS(t)
	names, _ := TeraGen(d, c, "/in/ts", TeraGenConfig{Rows: 3000, Files: 3, Seed: 11})
	spec, err := TeraSortSpec(d, "ts", names, "/out/ts", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	// The sampled partitioner should split uniform random keys roughly
	// evenly: run all keys through it.
	counts := make([]int, 3)
	for _, n := range names {
		data, _ := d.Contents(n)
		mapreduce.FixedFormat{KeyLen: TeraKeyLen, ValLen: TeraValueLen}.Scan(data, func(k, _ []byte) {
			counts[spec.Partition(k, 3)]++
		})
	}
	for p, n := range counts {
		if n < 500 || n > 1500 {
			t.Errorf("partition %d got %d of 3000 keys — sampling badly skewed", p, n)
		}
	}
}

func TestPiInputAndControlParsing(t *testing.T) {
	d, c := testDFS(t)
	names, err := GeneratePiInput(d, c, "/in/pi", PiConfig{Maps: 4, Samples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 {
		t.Fatalf("files = %d", len(names))
	}
	data, _ := d.Contents(names[2])
	off, n, err := parsePiLine(data)
	if err != nil {
		t.Fatal(err)
	}
	if off != 2000 || n != 1000 {
		t.Fatalf("control = (%d,%d), want (2000,1000)", off, n)
	}
	if _, _, err := parsePiLine([]byte("garbage")); err == nil {
		t.Fatal("malformed control did not error")
	}
}

func TestHaltonUniformity(t *testing.T) {
	// The Halton estimate of π converges quickly; 50k points should be
	// within 1e-2.
	h := newHalton(0)
	var inside int64
	const n = 50_000
	for i := 0; i < n; i++ {
		x, y := h.next()
		if x < 0 || x >= 1 || y < 0 || y >= 1 {
			t.Fatalf("halton point out of unit square: (%v,%v)", x, y)
		}
		dx, dy := x-0.5, y-0.5
		if dx*dx+dy*dy <= 0.25 {
			inside++
		}
	}
	got := 4 * float64(inside) / n
	if math.Abs(got-math.Pi) > 0.01 {
		t.Fatalf("halton pi estimate = %v", got)
	}
}

func TestPiMapScalesVirtualSamples(t *testing.T) {
	var pairs []mapreduce.Pair
	piMap(nil, []byte("0,100000000"), func(k, v []byte) {
		pairs = append(pairs, mapreduce.Pair{Key: k, Value: v})
	})
	if len(pairs) != 2 {
		t.Fatalf("pi map emitted %d pairs", len(pairs))
	}
	var total int64
	for _, p := range pairs {
		n, err := strconv.ParseInt(string(p.Value), 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 100000000 {
		t.Fatalf("scaled counts sum to %d, want the full virtual sample count", total)
	}
}

func TestRadicalInverseKnownValues(t *testing.T) {
	cases := []struct {
		n, b int64
		want float64
	}{
		{1, 2, 0.5}, {2, 2, 0.25}, {3, 2, 0.75}, {1, 3, 1.0 / 3}, {2, 3, 2.0 / 3},
	}
	for _, c := range cases {
		if got := radicalInverse(c.n, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("radicalInverse(%d,%d) = %v, want %v", c.n, c.b, got, c.want)
		}
	}
}
