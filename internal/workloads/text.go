// Package workloads provides the three benchmark applications the paper
// evaluates — WordCount, TeraSort, and PI — as real, executing MapReduce
// jobs: generators that synthesize their inputs deterministically, job
// specifications with genuine map/reduce functions, and output verifiers
// used by the test suite.
package workloads

import (
	"bytes"
	"fmt"
	"math/rand"
)

// Corpus generates deterministic English-like text for WordCount inputs.
// Words are drawn from a fixed-size vocabulary under a Zipf distribution,
// which yields the skewed word frequencies real text has (a heavy head that
// the combiner, when enabled, can collapse).
type Corpus struct {
	vocab [][]byte
	zipf  *rand.Zipf
	rng   *rand.Rand
}

// NewCorpus builds a corpus with the given vocabulary size and seed. The
// same (size, seed) always produces the same text.
func NewCorpus(vocabSize int, seed int64) *Corpus {
	if vocabSize <= 0 {
		panic("workloads: vocabulary must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	vocab := make([][]byte, vocabSize)
	seen := make(map[string]bool, vocabSize)
	const letters = "abcdefghijklmnopqrstuvwxyz"
	for i := range vocab {
		for {
			n := 3 + rng.Intn(8)
			w := make([]byte, n)
			for j := range w {
				w[j] = letters[rng.Intn(len(letters))]
			}
			if !seen[string(w)] {
				seen[string(w)] = true
				vocab[i] = w
				break
			}
		}
	}
	return &Corpus{
		vocab: vocab,
		zipf:  rand.NewZipf(rng, 1.2, 1.0, uint64(vocabSize-1)),
		rng:   rng,
	}
}

// Generate produces approximately size bytes of newline-separated text,
// always ending cleanly at a line boundary.
func (c *Corpus) Generate(size int64) []byte {
	var buf bytes.Buffer
	buf.Grow(int(size) + 128)
	line := 0
	for int64(buf.Len()) < size {
		w := c.vocab[c.zipf.Uint64()]
		buf.Write(w)
		line += len(w) + 1
		if line >= 70 {
			buf.WriteByte('\n')
			line = 0
		} else {
			buf.WriteByte(' ')
		}
	}
	b := buf.Bytes()
	if len(b) > 0 && b[len(b)-1] != '\n' {
		b = append(b, '\n')
	}
	return b
}

// InputFileName names the i-th generated input file for a job under a
// common prefix, e.g. /in/wordcount/part-00003.
func InputFileName(prefix string, i int) string {
	return fmt.Sprintf("%s/part-%05d", prefix, i)
}

// streamCache memoizes generated corpus streams by (vocabulary, seed). The
// benchmark harness builds hundreds of simulations over the same synthetic
// inputs; regenerating Zipf text each time is pure host-CPU waste, and a
// cached stream is byte-identical to a regenerated one by construction.
// Not safe for concurrent use, like the rest of the single-threaded
// simulator.
var streamCache = map[streamKey][]byte{}

type streamKey struct {
	vocab int
	seed  int64
}

// corpusStream returns at least n bytes of the deterministic corpus stream
// for (vocab, seed), extending the cached stream as needed.
func corpusStream(vocab int, seed int64, n int64) []byte {
	k := streamKey{vocab, seed}
	s := streamCache[k]
	if int64(len(s)) < n {
		// Regenerate from scratch at the larger size: Corpus generation is
		// stateful, so extending requires replaying from the seed anyway.
		s = NewCorpus(vocab, seed).Generate(n)
		streamCache[k] = s
	}
	return s
}

// cutAtLine returns the prefix of data of at least n bytes ending at a line
// boundary (falling back to all of data).
func cutAtLine(data []byte, n int64) []byte {
	if n >= int64(len(data)) {
		return data
	}
	i := n
	for i < int64(len(data)) && data[i-1] != '\n' {
		i++
	}
	return data[:i]
}
