package workloads

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"mrapid/internal/mapreduce"
)

// TestTeraSampleSelectionDeterministic: key selection must depend only on
// the key bytes (FNV hash), never on row order, so parallel host execution
// cannot perturb the sample.
func TestTeraSampleSelectionDeterministic(t *testing.T) {
	spec := TeraSampleSpec("s", []string{"/in"}, "/out", 4)
	row := func(key string) []byte {
		b := []byte(key)
		for len(b) < TeraRowLen {
			b = append(b, '.')
		}
		return b
	}
	keys := []string{"aaaaaaaaaa", "bbbbbbbbbb", "cccccccccc", "dddddddddd", "eeeeeeeeee", "ffffffffff"}
	sample := func(order []string) map[string]bool {
		var data []byte
		for _, k := range order {
			data = append(data, row(k)...)
		}
		got := map[string]bool{}
		spec.Format.Scan(data, func(k, v []byte) {
			spec.Map(k, v, func(key, _ []byte) { got[string(key)] = true })
		})
		return got
	}
	fwd := sample(keys)
	rev := sample([]string{keys[5], keys[4], keys[3], keys[2], keys[1], keys[0]})
	if len(fwd) != len(rev) {
		t.Fatalf("sample size depends on row order: %v vs %v", fwd, rev)
	}
	for k := range fwd {
		if !rev[k] {
			t.Fatalf("selection of %q depends on row order", k)
		}
	}
	// every == 1 selects everything.
	all := TeraSampleSpec("s1", []string{"/in"}, "/out", 1)
	n := 0
	for _, k := range keys {
		all.Map([]byte(k), nil, func(_, _ []byte) { n++ })
	}
	if n != len(keys) {
		t.Fatalf("every=1 selected %d of %d keys", n, len(keys))
	}
}

// TestCutPointsFromSample: weighted quantiles over a staged sample output,
// and the degenerate tail when partitions outnumber distinct keys.
func TestCutPointsFromSample(t *testing.T) {
	d, c := testDFS(t)
	// Skewed sample: "kkkk-05" carries most of the weight.
	var buf bytes.Buffer
	for i, w := range []int64{1, 2, 1, 1, 1, 20, 1, 1} {
		fmt.Fprintf(&buf, "kkkk-%02d\t%d\n", i, w)
	}
	d.PutInstant(mapreduce.PartFileName("/sample", 0), buf.Bytes(), c.Workers()[0])

	cuts, err := CutPointsFromSample(d, "/sample", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 3 {
		t.Fatalf("cuts = %d, want 3", len(cuts))
	}
	if !sort.SliceIsSorted(cuts, func(i, j int) bool { return bytes.Compare(cuts[i], cuts[j]) < 0 }) {
		t.Fatalf("cut points not sorted: %q", cuts)
	}
	// The heavy key absorbs the middle quantiles.
	heavy := 0
	for _, cut := range cuts {
		if string(cut) == "kkkk-05" {
			heavy++
		}
	}
	if heavy < 2 {
		t.Errorf("heavy key appears in %d of %d cut points; want the weight to dominate", heavy, len(cuts))
	}

	if _, err := CutPointsFromSample(d, "/sample", 1); err != nil {
		t.Fatalf("reduces=1: %v", err)
	}

	// Fewer distinct keys than partitions: the tail repeats the last key.
	d.PutInstant(mapreduce.PartFileName("/tiny", 0), []byte("only-key\t3\n"), c.Workers()[0])
	cuts, err = CutPointsFromSample(d, "/tiny", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 3 {
		t.Fatalf("degenerate cuts = %d, want 3", len(cuts))
	}
	for _, cut := range cuts {
		if string(cut) != "only-key" {
			t.Fatalf("degenerate cut = %q", cut)
		}
	}

	// Malformed rows are rejected.
	d.PutInstant(mapreduce.PartFileName("/bad", 0), []byte("no-tab-here\n"), c.Workers()[0])
	if _, err := CutPointsFromSample(d, "/bad", 2); err == nil {
		t.Error("malformed sample accepted")
	}
}

// TestTeraSampleToSortPipeline: the sample job's output yields cut points
// that partition a TeraSort into a valid total order, end to end through
// the pure executors.
func TestTeraSampleToSortPipeline(t *testing.T) {
	d, c := testDFS(t)
	const rows = 400
	names, err := TeraGen(d, c, "/in/tsp", TeraGenConfig{Rows: rows, Files: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	// Stage 1: the sampling job, run through the pure executors with the
	// combiner applied per map (as a real task would).
	sample := TeraSampleSpec("sample", names, "/sample", 3)
	var sampleOuts []*mapreduce.MapOutput
	for _, name := range names {
		data, err := d.Contents(name)
		if err != nil {
			t.Fatal(err)
		}
		sampleOuts = append(sampleOuts, mapreduce.ExecMap(sample, data))
	}
	var out bytes.Buffer
	for _, p := range mapreduce.ExecReduce(sample, 0, sampleOuts) {
		out.Write(p.Key)
		out.WriteByte('\t')
		out.Write(p.Value)
		out.WriteByte('\n')
	}
	d.PutInstant(mapreduce.PartFileName("/sample", 0), out.Bytes(), c.Workers()[0])

	// Stage 2: cut points from the sample, then the sort.
	const reduces = 4
	cuts, err := CutPointsFromSample(d, "/sample", reduces)
	if err != nil {
		t.Fatal(err)
	}
	sortSpec := TeraSortSpecFromCuts("tsort", names, "/out/tsp", reduces, cuts)
	var sortOuts []*mapreduce.MapOutput
	for _, name := range names {
		data, err := d.Contents(name)
		if err != nil {
			t.Fatal(err)
		}
		sortOuts = append(sortOuts, mapreduce.ExecMap(sortSpec, data))
	}
	var counted int64
	var prev []byte
	for p := 0; p < reduces; p++ {
		for _, pr := range mapreduce.ExecReduce(sortSpec, p, sortOuts) {
			if prev != nil && bytes.Compare(prev, pr.Key) > 0 {
				t.Fatalf("partition %d breaks the total order: %q > %q", p, prev, pr.Key)
			}
			prev = append(prev[:0], pr.Key...)
			counted++
		}
	}
	if counted != rows {
		t.Fatalf("sorted %d rows, want %d", counted, rows)
	}
}
