module mrapid

go 1.22
