// PI example: the compute-bound quasi-Monte-Carlo job of the paper's
// Figure 11. Sweeping the sample count shows the stock-mode crossover
// (Uber wins small jobs, distributed wins big ones) while MRapid's U+ mode
// stays the best choice throughout — the paper's point that MRapid
// "alleviates the limitation of the original Uber mode".
//
//	go run ./examples/pi
package main

import (
	"fmt"
	"log"
	"math"

	"mrapid/internal/bench"
	"mrapid/internal/workloads"
)

func runPi(v bench.Variant, samples int64) (secs, estimate float64, err error) {
	env, err := bench.NewEnv(bench.A3x4(), v)
	if err != nil {
		return 0, 0, err
	}
	inputs, err := workloads.GeneratePiInput(env.DFS, env.Cluster, "/in/pi", workloads.PiConfig{
		Maps: 4, Samples: samples / 4,
	})
	if err != nil {
		return 0, 0, err
	}
	spec := workloads.PiSpec(env.DFS, "pi-example", inputs, "/out/pi")
	res, err := env.Run(v, spec)
	if err != nil {
		return 0, 0, err
	}
	est, err := workloads.PiEstimate(env.DFS, "/out/pi")
	if err != nil {
		return 0, 0, err
	}
	return res.Elapsed(), est, nil
}

func main() {
	variants := bench.StandardVariants()
	fmt.Println("PI with 4 maps on the A3×4 cluster (virtual seconds per mode):")
	fmt.Printf("%-10s", "samples")
	for _, v := range variants {
		fmt.Printf("  %8s", v.Name)
	}
	fmt.Println("   pi estimate")

	for _, millions := range []int64{100, 200, 400, 800, 1600} {
		samples := millions * 1_000_000
		fmt.Printf("%-10s", fmt.Sprintf("%dm", millions))
		var estimate float64
		for _, v := range variants {
			secs, est, err := runPi(v, samples)
			if err != nil {
				log.Fatalf("%s at %dm: %v", v.Name, millions, err)
			}
			estimate = est
			fmt.Printf("  %8.2f", secs)
		}
		fmt.Printf("   %.6f (|err| %.2e)\n", estimate, math.Abs(estimate-math.Pi))
	}

	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println("  - at small sample counts the stock modes are close (Uber avoids container")
	fmt.Println("    launches, distributed computes in parallel); as samples grow, sequential")
	fmt.Println("    Uber falls hopelessly behind — the paper's stock-mode crossover;")
	fmt.Println("  - U+ is best everywhere: parallel like distributed, overhead-free like Uber,")
	fmt.Println("    which is why MRapid keeps a compute-bound job in U+ even at 1600m samples.")
}
