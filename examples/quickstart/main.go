// Quickstart: build a simulated 4-node Hadoop cluster, start the MRapid
// framework, and run one WordCount through speculative dual-mode execution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mrapid/internal/core"
	"mrapid/internal/costmodel"
	"mrapid/internal/hdfs"
	"mrapid/internal/mapreduce"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/workloads"
	"mrapid/internal/yarn"
)

func main() {
	// 1. A discrete-event engine drives everything; all times below are
	//    virtual.
	eng := sim.NewEngine()

	// 2. One NameNode + four A3 DataNodes across two racks (the paper's
	//    first testbed), with HDFS and YARN on top.
	cluster, err := topology.NewCluster(eng, topology.Spec{
		Instance: topology.A3, Workers: 4, Racks: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	params := costmodel.Default()
	dfs := hdfs.New(eng, cluster, params.HDFSBlockBytes, params.Replication, 42)
	rm := yarn.NewRM(eng, cluster, params, core.NewDPlusScheduler(core.FullDPlus()))
	rm.Start()
	rt := mapreduce.NewRuntime(eng, cluster, dfs, rm, params)

	// 3. The MRapid framework: proxy, AM pool (3 reserved AMs), history.
	fw := core.NewFramework(rt, params.AMPoolSize, core.FullUPlus())
	poolReady := false
	eng.After(0, func() { fw.Start(func() { poolReady = true }) })
	eng.RunUntil(sim.Time(1 << 36))
	if !poolReady {
		log.Fatal("AM pool failed to start")
	}
	fmt.Printf("cluster up at %s: %d workers, AM pool of %d reserved\n",
		eng.Now(), len(cluster.Workers()), fw.Pool.Size())

	// 4. Stage four 10 MB text files and build the WordCount job.
	inputs, err := workloads.GenerateWordCountInput(dfs, cluster, "/in/wc", workloads.WordCountConfig{
		Files: 4, FileBytes: 10 << 20, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec := workloads.WordCountSpec("quickstart-wc", inputs, "/out/wc", false)

	// 5. Submit speculatively: with no history, both D+ and U+ race; the
	//    decision maker estimates both (Equations 2–3) and kills the loser.
	var result *core.SpecResult
	eng.After(0, func() {
		fw.SubmitSpeculative(spec, func(r *core.SpecResult) {
			result = r
			rm.Stop()
		})
	})
	eng.RunUntil(sim.Time(1 << 42))
	if result == nil || result.Result.Err != nil {
		log.Fatalf("job failed: %+v", result)
	}

	fmt.Printf("winner: %s (from history: %v)\n", result.Winner, result.FromHistory)
	if result.EstimateD > 0 {
		fmt.Printf("estimator verdict at %s: t_d=%.2fs t_u=%.2fs\n",
			result.DecidedAt, result.EstimateD.Seconds(), result.EstimateU.Seconds())
	}
	fmt.Printf("completion: %.2f virtual seconds\n", result.Elapsed())

	// 6. Read the job output back from HDFS.
	out, err := dfs.Contents(mapreduce.PartFileName("/out/wc", 0))
	if err != nil {
		log.Fatal(err)
	}
	counts, err := workloads.ParseWordCountOutput(out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output: %d distinct words, e.g.:\n", len(counts))
	shown := 0
	for w, n := range counts {
		fmt.Printf("  %-12s %d\n", w, n)
		shown++
		if shown == 5 {
			break
		}
	}

	// 7. Submit the same program again: the history answers instantly and
	//    only the winning mode runs.
	spec2 := workloads.WordCountSpec("quickstart-wc-2", inputs, "/out/wc2", false)
	var second *core.SpecResult
	eng.After(0, func() {
		rm.Start()
		fw.SubmitSpeculative(spec2, func(r *core.SpecResult) {
			second = r
			rm.Stop()
		})
	})
	eng.RunUntil(eng.Now().Add(1 << 42))
	if second == nil || second.Result.Err != nil {
		log.Fatalf("second job failed: %+v", second)
	}
	fmt.Printf("second run: winner=%s fromHistory=%v, %.2fs (vs %.2fs speculative)\n",
		second.Winner, second.FromHistory, second.Elapsed(), result.Elapsed())
}
