// Query example: the Hive/Pig scenario from the paper's introduction — a
// analytics query decomposed into a chain of short MapReduce jobs, each
// submitted through the MRapid framework with speculative dual-mode
// execution and history reuse.
//
//	go run ./examples/query
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"time"

	"mrapid/internal/core"
	"mrapid/internal/costmodel"
	"mrapid/internal/hdfs"
	"mrapid/internal/mapreduce"
	"mrapid/internal/query"
	"mrapid/internal/sim"
	"mrapid/internal/topology"
	"mrapid/internal/yarn"
)

func main() {
	// Cluster + framework.
	eng := sim.NewEngine()
	cluster, err := topology.NewCluster(eng, topology.Spec{Instance: topology.A3, Workers: 4, Racks: 2})
	if err != nil {
		log.Fatal(err)
	}
	params := costmodel.Default()
	dfs := hdfs.New(eng, cluster, params.HDFSBlockBytes, params.Replication, 21)
	rm := yarn.NewRM(eng, cluster, params, core.NewDPlusScheduler(core.FullDPlus()))
	rm.Start()
	rt := mapreduce.NewRuntime(eng, cluster, dfs, rm, params)
	fw := core.NewFramework(rt, params.AMPoolSize, core.FullUPlus())
	ready := false
	eng.After(0, func() { fw.Start(func() { ready = true }) })
	eng.RunUntil(sim.Time(60 * time.Second))
	if !ready {
		log.Fatal("framework not ready")
	}

	// Warehouse tables: ~40k sales rows and a small dimension table.
	cat := query.NewCatalog(dfs, cluster)
	rng := rand.New(rand.NewSource(77))
	regions := []string{"east", "west", "north", "south"}
	var sales []query.Row
	for i := 0; i < 40_000; i++ {
		sales = append(sales, query.Row{
			strconv.Itoa(i),
			regions[rng.Intn(len(regions))],
			strconv.Itoa(50 + rng.Intn(950)),
			fmt.Sprintf("cust-%03d", rng.Intn(400)),
		})
	}
	if _, err := cat.Create("sales", query.Schema{"id", "region", "amount", "customer"}, sales, 4); err != nil {
		log.Fatal(err)
	}
	if _, err := cat.Create("regions", query.Schema{"name", "manager"}, []query.Row{
		{"east", "amy"}, {"west", "bob"}, {"north", "carol"}, {"south", "dan"},
	}, 1); err != nil {
		log.Fatal(err)
	}

	runner := query.NewRunner(fw, cat)

	// The query, in SQL:
	//   SELECT r.manager, SUM(s.amount), COUNT(*)
	//   FROM sales s JOIN regions r ON s.region = r.name
	//   WHERE s.amount >= 500
	//   GROUP BY r.manager
	//   ORDER BY SUM(s.amount) DESC
	plan := query.Scan("sales").
		Filter(query.Where("amount", query.OpGe, "500")).
		Join(query.Scan("regions"), "region", "name").
		GroupBy([]string{"manager"}, query.Sum("amount"), query.Count()).
		OrderBy("sum(amount)", true)

	fmt.Println("logical plan:", plan)
	exec := func(label string) *query.Result {
		var res *query.Result
		var errOut error
		eng.After(0, func() {
			runner.Run(plan, func(r *query.Result, err error) { res, errOut = r, err })
		})
		eng.RunUntil(eng.Now().Add(1 << 42))
		if errOut != nil {
			log.Fatalf("%s: %v", label, errOut)
		}
		fmt.Printf("%s: %d MapReduce stages, %.2f virtual seconds, stage winners %v\n",
			label, res.Stages, res.Elapsed, res.Winners)
		return res
	}

	res := exec("first run (speculative)")
	fmt.Println("manager      sum(amount)  count(*)")
	for _, r := range res.Rows {
		fmt.Printf("%-12s %-12s %s\n", r[0], r[1], r[2])
	}

	// Hive-style frontends fire the same shapes of stage over and over;
	// the second run of every stage kind is answered from the execution
	// history without speculation.
	res2 := exec("second run (history)")
	fmt.Printf("history cut the run from %.2fs to %.2fs\n", res.Elapsed, res2.Elapsed)
}
