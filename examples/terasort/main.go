// TeraSort example: generate rows with TeraGen, sort them with the
// MapReduce TeraSort (sampled total-order partitioner), and compare the two
// MRapid modes — the paper's Figure 10 scenario where U+ wins because the
// job is I/O-light and shuffle-heavy.
//
//	go run ./examples/terasort
package main

import (
	"fmt"
	"log"

	"mrapid/internal/bench"
	"mrapid/internal/mapreduce"
	"mrapid/internal/sim"
	"mrapid/internal/workloads"
)

const rows = 400_000 // 40 MB over 4 input blocks

func runMode(v bench.Variant) (float64, error) {
	env, err := bench.NewEnv(bench.A3x4(), v)
	if err != nil {
		return 0, err
	}
	inputs, err := workloads.TeraGen(env.DFS, env.Cluster, "/in/ts", workloads.TeraGenConfig{
		Rows: rows, Files: 4, Seed: 11,
	})
	if err != nil {
		return 0, err
	}
	spec, err := workloads.TeraSortSpec(env.DFS, "terasort-example", inputs, "/out/ts", 1)
	if err != nil {
		return 0, err
	}
	res, err := env.Run(v, spec)
	if err != nil {
		return 0, err
	}
	// The point of TeraSort is a verifiably ordered output.
	if err := workloads.VerifyTeraSortOutput(env.DFS, "/out/ts", 1, rows); err != nil {
		return 0, err
	}
	return res.Elapsed(), nil
}

func main() {
	fmt.Printf("TeraSort: %d rows (%d MB) in 4 blocks on the A3×4 cluster\n",
		rows, rows*workloads.TeraRowLen/(1<<20))

	results := map[string]float64{}
	for _, v := range bench.StandardVariants() {
		secs, err := runMode(v)
		if err != nil {
			log.Fatalf("%s: %v", v.Name, err)
		}
		results[v.Name] = secs
		fmt.Printf("  %-7s %6.2f virtual seconds (output verified in total order)\n", v.Name, secs)
	}
	fmt.Printf("U+ vs stock Uber:    %.1f%% faster\n",
		(results["uber"]-results["uplus"])/results["uber"]*100)
	fmt.Printf("U+ vs D+:            %.1f%% faster (single container, no network shuffle)\n",
		(results["dplus"]-results["uplus"])/results["dplus"]*100)

	// Show how a multi-reduce total-order sort partitions: 3 reducers over
	// the same data, each part file strictly after the previous.
	env, err := bench.NewEnv(bench.A3x4(), bench.VariantUPlus())
	if err != nil {
		log.Fatal(err)
	}
	inputs, err := workloads.TeraGen(env.DFS, env.Cluster, "/in/ts", workloads.TeraGenConfig{
		Rows: rows, Files: 4, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec, err := workloads.TeraSortSpec(env.DFS, "terasort-3r", inputs, "/out/ts3", 3)
	if err != nil {
		log.Fatal(err)
	}
	var res *mapreduce.Result
	env.Eng.After(0, func() {
		env.FW.SubmitUPlus(spec, func(r *mapreduce.Result) {
			res = r
			env.RM.Stop()
		})
	})
	env.Eng.RunUntil(sim.Time(1 << 42))
	if res == nil || res.Err != nil {
		log.Fatalf("3-reduce sort failed: %+v", res)
	}
	if err := workloads.VerifyTeraSortOutput(env.DFS, "/out/ts3", 3, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-reduce total-order sort verified across part files (%.2fs)\n", res.Elapsed())
}
