// Ad-hoc query burst example: the workload that motivates the paper.
// Hive/Pig-style frontends decompose a query into a series of short
// MapReduce jobs; this example fires six short WordCount-style jobs
// back-to-back, first through stock Hadoop and then through the MRapid
// framework, where the first submission speculates and every later one is
// answered from the execution history and reuses a pooled AM.
//
//	go run ./examples/adhoc
package main

import (
	"fmt"
	"log"

	"mrapid/internal/bench"
	"mrapid/internal/core"
	"mrapid/internal/mapreduce"
	"mrapid/internal/workloads"
)

const (
	jobs      = 6
	files     = 4
	fileBytes = 5 << 20 // 5 MB: each "query stage" is a genuinely short job
)

// stageInputs synthesizes a distinct input set per job (queries touch
// different data) on the given environment.
func stageInputs(env *bench.Env, job int) ([]string, error) {
	return workloads.GenerateWordCountInput(env.DFS, env.Cluster, fmt.Sprintf("/in/q%d", job),
		workloads.WordCountConfig{Files: files, FileBytes: fileBytes, Seed: int64(100 + job)})
}

// runStockBurst submits the burst through plain Hadoop, one job at a time
// (the frontend waits for each stage's output), and returns the total
// virtual time.
func runStockBurst() (float64, error) {
	env, err := bench.NewEnv(bench.A3x4(), bench.VariantHadoop())
	if err != nil {
		return 0, err
	}
	var total float64
	for j := 0; j < jobs; j++ {
		inputs, err := stageInputs(env, j)
		if err != nil {
			return 0, err
		}
		spec := workloads.WordCountSpec(fmt.Sprintf("query-stage-%d", j), inputs, fmt.Sprintf("/out/q%d", j), false)
		var res *mapreduce.Result
		env.Eng.After(0, func() {
			mapreduce.Submit(env.RT, spec, mapreduce.ModeDistributed, func(r *mapreduce.Result) { res = r })
		})
		env.Eng.RunUntil(env.Eng.Now().Add(1 << 41))
		if res == nil || res.Err != nil {
			return 0, fmt.Errorf("stage %d failed: %+v", j, res)
		}
		total += res.Elapsed()
		fmt.Printf("  stock  stage %d: %6.2fs\n", j, res.Elapsed())
	}
	env.RM.Stop()
	return total, nil
}

// runMRapidBurst submits the burst through the framework with speculative
// execution and history reuse.
func runMRapidBurst() (float64, error) {
	env, err := bench.NewEnv(bench.A3x4(), bench.VariantDPlus())
	if err != nil {
		return 0, err
	}
	var total float64
	for j := 0; j < jobs; j++ {
		inputs, err := stageInputs(env, j)
		if err != nil {
			return 0, err
		}
		spec := workloads.WordCountSpec(fmt.Sprintf("query-stage-%d", j), inputs, fmt.Sprintf("/out/q%d", j), false)
		spec.JobKey = "adhoc-query-stage" // one program identity: history carries over
		var res *core.SpecResult
		env.Eng.After(0, func() {
			env.FW.SubmitSpeculative(spec, func(r *core.SpecResult) { res = r })
		})
		env.Eng.RunUntil(env.Eng.Now().Add(1 << 41))
		if res == nil || res.Result.Err != nil {
			return 0, fmt.Errorf("stage %d failed: %+v", j, res)
		}
		tag := "speculated"
		if res.FromHistory {
			tag = "from history"
		}
		total += res.Elapsed()
		fmt.Printf("  mrapid stage %d: %6.2fs  winner=%-5s (%s)\n", j, res.Elapsed(), res.Winner, tag)
	}
	env.RM.Stop()
	fmt.Printf("  AM pool served %d dispatches with %d reserved AMs\n",
		env.FW.Pool.Dispatches, env.FW.Pool.Size())
	return total, nil
}

func main() {
	fmt.Printf("ad-hoc burst: %d short jobs (%d × %d MB each) on A3×4\n\n", jobs, files, fileBytes>>20)
	stock, err := runStockBurst()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	mrapid, err := runMRapidBurst()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nburst total: stock Hadoop %.2fs, MRapid %.2fs → %.1f%% faster\n",
		stock, mrapid, (stock-mrapid)/stock*100)
}
