// Command mrapid-bench regenerates the paper's evaluation tables and
// figures on the simulated cluster and prints them as text tables.
//
// Usage:
//
//	mrapid-bench                  # run every experiment at full scale
//	mrapid-bench -run fig7,fig14  # run selected experiments
//	mrapid-bench -scale 0.2       # shrink the inputs (faster, same code paths)
//	mrapid-bench -list            # list experiment IDs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mrapid/internal/bench"
	"mrapid/internal/mapreduce"
)

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		scale    = flag.Float64("scale", 1.0, "input-size scale factor (1.0 = paper sizes)")
		seed     = flag.Int64("seed", 1, "input synthesis / placement seed")
		workers  = flag.Int("workers", -1, "host worker threads for map/reduce computations: 0|1 sequential, >1 pool size, -1 all cores (figures are identical either way)")
		nodeFail = flag.String("node-fail", "", "node-fault schedule 'node@at[:restartAfter]', comma-separated, injected into every simulation (times measured from cluster-ready)")
		shuffle  = flag.Bool("shuffle-service", false, "attach the per-node consolidating shuffle service to every simulation")
		memoOn   = flag.Bool("memo", false, "attach the cross-job memoization cache to every framework-backed simulation (repeat submissions over unchanged inputs skip execution)")
		codec    = flag.String("shuffle-codec", "none", "shuffle-service wire codec: none | lz")
		jsonOut  = flag.String("json", "", "also write the regenerated figures as a JSON array to this path (CI artifact)")
		list     = flag.Bool("list", false, "list experiment IDs and exit")

		seriesOut = flag.String("series-out", "", "write the flight recorder's Prometheus series dump here (enables the recorder; throughput experiment)")
		dashOut   = flag.String("dash-out", "", "write the flight recorder's HTML dashboard here (enables the recorder; throughput experiment)")
		engineOut = flag.String("engine-bench", "", "write the engine self-profile JSON (BENCH_engine.json) here (enables the recorder; throughput and engine experiments)")
	)
	flag.Parse()

	if *list {
		for _, r := range bench.Registry {
			fmt.Printf("%-8s %s\n", r.ID, r.Short)
		}
		return
	}

	selected := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			if _, ok := bench.Lookup(id); !ok {
				fmt.Fprintf(os.Stderr, "mrapid-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected[id] = true
		}
	}

	faults, err := mapreduce.ParseNodeFaults(*nodeFail)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mrapid-bench: %v\n", err)
		os.Exit(2)
	}

	opts := bench.Options{
		Scale: *scale, Seed: *seed, HostWorkers: *workers, NodeFaults: faults,
		ShuffleService: *shuffle, ShuffleCodec: *codec, MemoCache: *memoOn,
		SeriesOut: *seriesOut, DashOut: *dashOut, EngineBenchOut: *engineOut,
	}
	opts.FlightRecorder = *seriesOut != "" || *dashOut != "" || *engineOut != ""
	failures := 0
	var figures []*bench.Figure
	for _, r := range bench.Registry {
		if len(selected) > 0 && !selected[r.ID] {
			continue
		}
		start := time.Now()
		fig, err := r.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mrapid-bench: %s failed: %v\n", r.ID, err)
			failures++
			continue
		}
		if err := bench.Render(os.Stdout, fig); err != nil {
			fmt.Fprintf(os.Stderr, "mrapid-bench: rendering %s: %v\n", r.ID, err)
			failures++
			continue
		}
		figures = append(figures, fig)
		fmt.Printf("(%s regenerated in %.1fs wall time)\n\n", r.ID, time.Since(start).Seconds())
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, figures); err != nil {
			fmt.Fprintf(os.Stderr, "mrapid-bench: %v\n", err)
			failures++
		} else {
			fmt.Printf("figures written to %s\n", *jsonOut)
		}
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// writeJSON stores the regenerated figures as an indented JSON array, the
// machine-readable artifact the CI run uploads.
func writeJSON(path string, figures []*bench.Figure) error {
	data, err := json.MarshalIndent(figures, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding figures: %w", err)
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
