// Command perfgate is the CI perf-regression gate for the discrete-event
// engine: it diffs a freshly generated BENCH_engine.json against the
// committed baseline and fails (exit 1) when throughput regressed beyond
// the tolerance or the allocation rate grew beyond it.
//
//	perfgate -baseline perf/BENCH_engine.baseline.json -fresh artifacts/BENCH_engine_storm.json
//
// events/sec is host-dependent — the tolerance absorbs machine-to-machine
// noise, and the baseline should be refreshed (run the engine experiment
// with -engine-bench and commit the output) whenever CI hardware or an
// intentional engine change moves the floor. allocs/event is deterministic
// for a given Go toolchain, so its check is the sharper tripwire.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type engineBench struct {
	Events              uint64  `json:"events"`
	VirtualSeconds      float64 `json:"virtual_seconds"`
	HostSeconds         float64 `json:"host_seconds"`
	EventsPerHostSec    float64 `json:"events_per_host_sec"`
	HostNsPerVirtualSec float64 `json:"host_ns_per_virtual_sec"`
	AllocsPerEvent      float64 `json:"allocs_per_event"`
	BytesPerEvent       float64 `json:"bytes_per_event"`
	MaxEventHeapDepth   int     `json:"max_event_heap_depth"`
}

type benchFile struct {
	ID    string      `json:"id"`
	Bench engineBench `json:"bench"`
}

func load(path string) (engineBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return engineBench{}, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return engineBench{}, fmt.Errorf("%s: %w", path, err)
	}
	if f.Bench.EventsPerHostSec <= 0 {
		return engineBench{}, fmt.Errorf("%s: no events_per_host_sec in bench", path)
	}
	return f.Bench, nil
}

func main() {
	baselinePath := flag.String("baseline", "perf/BENCH_engine.baseline.json", "committed baseline BENCH_engine.json")
	freshPath := flag.String("fresh", "", "freshly generated BENCH_engine.json to gate")
	maxRegress := flag.Float64("max-regress", 0.20, "tolerated fractional events/sec regression (and allocs/event growth)")
	flag.Parse()
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "perfgate: -fresh is required")
		os.Exit(2)
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: baseline: %v\n", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: fresh: %v\n", err)
		os.Exit(2)
	}

	evRatio := fresh.EventsPerHostSec / base.EventsPerHostSec
	fmt.Printf("%-22s %14s %14s %8s\n", "metric", "baseline", "fresh", "ratio")
	fmt.Printf("%-22s %14.0f %14.0f %7.2fx\n", "events/host-sec", base.EventsPerHostSec, fresh.EventsPerHostSec, evRatio)
	allocRatio := 0.0
	if base.AllocsPerEvent > 0 {
		allocRatio = fresh.AllocsPerEvent / base.AllocsPerEvent
		fmt.Printf("%-22s %14.3f %14.3f %7.2fx\n", "allocs/event", base.AllocsPerEvent, fresh.AllocsPerEvent, allocRatio)
	} else {
		fmt.Printf("%-22s %14.3f %14.3f %8s\n", "allocs/event", base.AllocsPerEvent, fresh.AllocsPerEvent, "n/a")
	}
	fmt.Printf("%-22s %14.2f %14.2f\n", "bytes/event", base.BytesPerEvent, fresh.BytesPerEvent)
	fmt.Printf("%-22s %14d %14d\n", "max-live-pending", base.MaxEventHeapDepth, fresh.MaxEventHeapDepth)

	failed := false
	if evRatio < 1.0-*maxRegress {
		fmt.Fprintf(os.Stderr, "perfgate: FAIL events/host-sec regressed %.1f%% (tolerance %.0f%%)\n",
			(1-evRatio)*100, *maxRegress*100)
		failed = true
	}
	if base.AllocsPerEvent > 0 && allocRatio > 1.0+*maxRegress {
		fmt.Fprintf(os.Stderr, "perfgate: FAIL allocs/event grew %.1f%% (tolerance %.0f%%)\n",
			(allocRatio-1)*100, *maxRegress*100)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("perfgate: OK")
}
