// Command teragen generates TeraSort input rows (100-byte records, 10-byte
// random printable keys) to stdout or a local file, for inspecting exactly
// what the simulated TeraGen stages into HDFS.
//
// Usage:
//
//	teragen -rows 1000 > rows.dat
//	teragen -rows 100000 -seed 7 -o /tmp/terasort-input.dat
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
)

const (
	keyLen = 10
	rowLen = 100
)

func main() {
	var (
		rows = flag.Int64("rows", 1000, "number of 100-byte rows")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "teragen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	if err := generate(bw, *rows, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "teragen: %v\n", err)
		os.Exit(1)
	}
}

// generate writes rows records identical in shape to the simulated TeraGen:
// a printable random key followed by the zero-padded row ordinal and dot
// filler.
func generate(w io.Writer, rows, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	row := make([]byte, rowLen)
	for r := int64(0); r < rows; r++ {
		for k := 0; k < keyLen; k++ {
			row[k] = byte(' ' + rng.Intn(95))
		}
		payload := fmt.Sprintf("%022d", r)
		copy(row[keyLen:], payload)
		for i := keyLen + len(payload); i < rowLen; i++ {
			row[i] = '.'
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}
