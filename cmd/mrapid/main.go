// Command mrapid runs a single benchmark job on a freshly simulated Hadoop
// cluster in a chosen execution mode and reports its timeline, task
// profile, and resource metrics.
//
// Usage:
//
//	mrapid -job wordcount -mode dplus -files 8 -size-mb 10
//	mrapid -job terasort  -mode uplus -rows 800000
//	mrapid -job pi        -mode speculative -samples 400000000
//	mrapid -job wordcount -mode hadoop -cluster A2x9 -verbose
//
// With -jobs > 1 the command switches to multi-job workload mode: a stream
// of WordCount jobs is spread round-robin over -tenants capacity queues and
// driven through the JobServer admission layer, reporting makespan, latency
// quantiles, queue wait, and per-tenant fairness.
//
//	mrapid -jobs 60 -tenants 3 -arrival poisson:250ms -policy wfair
//
// With -job query the command runs a join-heavy analytics query through the
// query compiler and compares the sequential stage chain against the DAG
// scheduler (parallel branches, producer-local intermediates):
//
//	mrapid -job query -query-exec both
//	mrapid -job query -query-exec dag -node-fail 'node-01@4s:20s'
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"mrapid/internal/bench"
	"mrapid/internal/core"
	"mrapid/internal/flight"
	"mrapid/internal/mapreduce"
	"mrapid/internal/metrics"
	"mrapid/internal/profiler"
	"mrapid/internal/query"
	"mrapid/internal/report"
	"mrapid/internal/sim"
	"mrapid/internal/trace"
	"mrapid/internal/workloads"
	"mrapid/internal/yarn"
)

func main() {
	var (
		job      = flag.String("job", "wordcount", "workload: wordcount | terasort | pi | query")
		mode     = flag.String("mode", "speculative", "mode: hadoop | uber | dplus | uplus | speculative")
		cluster  = flag.String("cluster", "A3x4", "cluster: A3x4 | A2x9")
		files    = flag.Int("files", 4, "wordcount/terasort input files")
		sizeMB   = flag.Float64("size-mb", 10, "wordcount file size in MB")
		rows     = flag.Int64("rows", 400_000, "terasort rows")
		samples  = flag.Int64("samples", 400_000_000, "pi total samples")
		maps     = flag.Int("maps", 4, "pi map tasks")
		seed     = flag.Int64("seed", 1, "generator seed")
		workers  = flag.Int("workers", 0, "host worker threads for map/reduce computations: 0|1 sequential, >1 pool size, -1 all cores (virtual results are identical)")
		verbose  = flag.Bool("verbose", false, "print per-task profile")
		traceN   = flag.Int("trace", 0, "print the last N scheduling/task trace events")
		nodeFail = flag.String("node-fail", "", "node-fault schedule 'node@at[:restartAfter]', comma-separated (e.g. 'node-02@5s:20s'); times measured from cluster-ready")
		traceOut = flag.String("trace-out", "", "write the run's span tree as Chrome trace_event JSON (load in Perfetto / chrome://tracing); with the flight recorder on, series ride along as counter lanes")
		metOut   = flag.String("metrics-out", "", "write the phase report and metrics registry as JSON")
		serOut   = flag.String("series-out", "", "enable the flight recorder and write its Prometheus series dump here")
		dashOut  = flag.String("dash-out", "", "enable the flight recorder and write its HTML dashboard here")
		phaseRep = flag.Bool("report", false, "print the critical-path phase-attribution report")
		shuffle  = flag.Bool("shuffle-service", false, "attach the per-node consolidating shuffle service (one fetch per node & partition, in-node combine)")
		memoOn   = flag.Bool("memo", false, "attach the cross-job memoization cache: repeat submissions of an identical job over unchanged inputs are served from the cache without launching anything (pairs well with -repeat and workload mode)")
		codec    = flag.String("shuffle-codec", "none", "shuffle-service wire codec: none | lz")
		jobs     = flag.Int("jobs", 1, "number of jobs; > 1 switches to multi-job workload mode through the JobServer")
		tenants  = flag.Int("tenants", 2, "workload mode: tenant capacity queues the jobs are spread over")
		arrival  = flag.String("arrival", "burst", "workload mode: arrival process — burst | uniform:<gap> | poisson:<mean>")
		policy   = flag.String("policy", "fifo", "workload mode: admission policy — fifo | wfair | deadline")
		predict  = flag.Bool("predict", false, "enable the calibrating estimator: confident workload classes skip the speculative dual-launch (workload mode: the whole stream runs speculative with prediction on)")
		repeat   = flag.Int("repeat", 1, "speculative mode: submit the job N times under fresh job keys, so the class estimator warms up and later runs can pre-decide")
		showHist = flag.Bool("show-history", false, "print the execution-record history (exact-match entries and per-class calibration aggregates) after the run")
		qexec    = flag.String("query-exec", "both", "query job: stage scheduling — chain | dag | both (compare)")
	)
	flag.Parse()

	svc := shuffleSetting{Enabled: *shuffle, Codec: *codec}
	if *job == "query" {
		if err := runQuery(*cluster, *qexec, *seed, *workers, *nodeFail, svc, *verbose); err != nil {
			fmt.Fprintf(os.Stderr, "mrapid: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jobs > 1 {
		if err := runWorkload(*cluster, *jobs, *tenants, *arrival, *policy, *seed, *workers, *nodeFail, svc, *predict, *memoOn, *serOut, *dashOut); err != nil {
			fmt.Fprintf(os.Stderr, "mrapid: %v\n", err)
			os.Exit(1)
		}
		return
	}
	obs := observability{TraceOut: *traceOut, MetricsOut: *metOut, Report: *phaseRep, SeriesOut: *serOut, DashOut: *dashOut}
	est := estimatorSetting{Predict: *predict, Repeat: *repeat, ShowHistory: *showHist}
	if err := run(*job, *mode, *cluster, *files, *sizeMB, *rows, *samples, *maps, *seed, *workers, *verbose, *traceN, *nodeFail, svc, *memoOn, obs, est); err != nil {
		fmt.Fprintf(os.Stderr, "mrapid: %v\n", err)
		os.Exit(1)
	}
}

// estimatorSetting groups the -predict/-repeat/-show-history flags.
type estimatorSetting struct {
	Predict     bool
	Repeat      int
	ShowHistory bool
}

// printHistory dumps the execution-record store: exact-match entries first,
// then the per-class calibration aggregates with their confidence verdicts.
func printHistory(h *core.History) {
	fmt.Println("history (exact-match records):")
	for _, e := range h.Entries() {
		fmt.Printf("  %-14s winner=%-6s runs=%-2d elapsed=%.2fs wins=%v\n",
			e.Job, e.Winner, e.Runs, e.Elapsed.Seconds(), e.Wins)
	}
	fmt.Println("history (workload-class aggregates):")
	for _, cs := range h.Classes() {
		fmt.Printf("  %s runs=%-2d rate=%.3gs/B (cv %.3f) sel=%.3f (cv %.3f) calib=%.3f intra-cv=%.3f d/u=%d/%d confident=%v\n",
			cs.Class, cs.Runs, cs.Rate.Mean, cs.Rate.CV(), cs.Sel.Mean, cs.Sel.CV(),
			cs.Calib.Mean, cs.IntraCV.Mean, cs.DWins, cs.UWins, h.Confident(cs.Class))
	}
}

// shuffleSetting groups the -shuffle-service/-shuffle-codec flags.
type shuffleSetting struct {
	Enabled bool
	Codec   string
}

// runWorkload is the multi-job mode: a WordCount stream through the
// JobServer on the chosen cluster, reported as a throughput/fairness table.
func runWorkload(cluster string, jobs, tenants int, arrival, policy string, seed int64, workers int, nodeFail string, svc shuffleSetting, predict, memoOn bool, seriesOut, dashOut string) error {
	var setup bench.ClusterSetup
	switch cluster {
	case "A3x4":
		setup = bench.A3x4()
	case "A2x9":
		setup = bench.A2x9()
	default:
		return fmt.Errorf("unknown cluster %q", cluster)
	}
	setup.Seed = seed
	faults, err := mapreduce.ParseNodeFaults(nodeFail)
	if err != nil {
		return err
	}
	var pol core.AdmissionPolicy
	switch policy {
	case "fifo":
		pol = core.PolicyFIFO
	case "wfair":
		pol = core.PolicyWeightedFair
	case "deadline":
		pol = core.PolicyDeadline
	default:
		return fmt.Errorf("unknown admission policy %q (want fifo, wfair, or deadline)", policy)
	}
	opts := bench.Options{
		Seed: seed, HostWorkers: workers, NodeFaults: faults,
		ShuffleService: svc.Enabled, ShuffleCodec: svc.Codec, MemoCache: memoOn,
		SeriesOut: seriesOut, DashOut: dashOut,
		FlightRecorder: seriesOut != "" || dashOut != "",
	}
	res, err := bench.RunThroughput(setup, bench.WorkloadConfig{
		Jobs: jobs, Tenants: tenants, Arrival: arrival, Policy: pol,
		Speculative: predict, Predict: predict, UniqueKeys: predict,
	}, opts)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d jobs, %d tenants, arrival=%s, policy=%s, cluster=%s\n",
		res.Jobs, tenants, arrival, res.Policy, cluster)
	fmt.Printf("makespan: %.2f virtual seconds\n", res.Makespan)
	fmt.Printf("job latency: p50=%.2fs p99=%.2fs  queue wait: mean=%.3fs\n", res.P50, res.P99, res.MeanWait)
	fmt.Printf("fairness (Jain over per-tenant mean latency): %.4f\n", res.Fairness)
	fmt.Println("per tenant:")
	for _, name := range res.TenantOrder {
		ts := res.Tenants[name]
		fmt.Printf("  %-10s jobs=%-3d mean-latency=%.2fs mean-wait=%.3fs\n", name, ts.Jobs, ts.MeanLatency, ts.MeanWait)
	}
	if predict {
		fmt.Printf("estimator: races=%d direct=%d (history=%d prediction=%d) slot-seconds=%.1f\n",
			res.Races, res.DirectHistory+res.DirectPrediction, res.DirectHistory, res.DirectPrediction, res.SlotSeconds)
		fmt.Printf("prediction: mean-rel-error=%.3f regret=%d\n", res.PredErrMean, res.Regret)
	}
	if memoOn {
		fmt.Printf("memo cache: hits=%d misses=%d\n", res.MemoHits, res.MemoMisses)
	}
	if res.SLO != nil {
		fmt.Printf("flight recorder: %d samples\n", res.FlightSamples)
		fmt.Println("per-tenant SLO (queue wait):")
		for _, name := range res.TenantOrder {
			if rep := res.SLO[name]; rep != nil {
				fmt.Printf("  %-10s %s\n", name, rep)
			}
		}
		title := fmt.Sprintf("workload: %d jobs, policy=%s, cluster=%s", jobs, policy, cluster)
		if err := res.WriteFlightArtifacts(opts, title); err != nil {
			return err
		}
		if seriesOut != "" {
			fmt.Printf("series dump written to %s\n", seriesOut)
		}
		if dashOut != "" {
			fmt.Printf("dashboard written to %s\n", dashOut)
		}
	}
	return nil
}

// runQuery is the query demo: a join-heavy analytics query (two group-by
// branches feeding a join and an order-by) compiled to a stage DAG and
// executed with the sequential chain runner, the DAG runner, or both for a
// side-by-side comparison. Each execution gets a fresh simulation so the
// modes never share history or cluster state, and stages run as plain D+
// jobs so the wall-clock difference is scheduling, not race outcomes.
func runQuery(cluster, exec string, seed int64, workers int, nodeFail string, svc shuffleSetting, verbose bool) error {
	if exec != "chain" && exec != "dag" && exec != "both" {
		return fmt.Errorf("unknown -query-exec %q (want chain, dag, or both)", exec)
	}
	plan := query.Scan("sales").
		Filter(query.Where("amount", query.OpGt, "250")).
		GroupBy([]string{"cell"}, query.Sum("amount"), query.Count()).
		Join(query.Scan("returns").
			Filter(query.Where("refund", query.OpGt, "40")).
			GroupBy([]string{"cell"}, query.Sum("refund")),
			"cell", "cell").
		OrderBy("sum(amount)", true)
	fmt.Println("logical plan:", plan)

	runOne := func(dag bool) (*query.Result, float64, error) {
		var setup bench.ClusterSetup
		switch cluster {
		case "A3x4":
			setup = bench.A3x4()
		case "A2x9":
			setup = bench.A2x9()
		default:
			return nil, 0, fmt.Errorf("unknown cluster %q", cluster)
		}
		setup.Seed = seed
		setup.HostWorkers = workers
		if svc.Enabled {
			setup.Params.ShuffleService = true
			setup.Params.ShuffleCodec = svc.Codec
		}
		faults, err := mapreduce.ParseNodeFaults(nodeFail)
		if err != nil {
			return nil, 0, err
		}
		setup.NodeFaults = faults
		v := bench.VariantDPlus()
		// Racing a stage speculatively holds two pooled AMs; give the DAG's
		// two concurrent branches room to race side by side.
		v.PoolSize = 6
		env, err := bench.NewEnv(setup, v)
		if err != nil {
			return nil, 0, err
		}
		defer env.Close()

		cat := query.NewCatalog(env.DFS, env.Cluster)
		rng := rand.New(rand.NewSource(seed))
		var sales, returns []query.Row
		for i := 0; i < 20_000; i++ {
			sales = append(sales, query.Row{
				strconv.Itoa(i), fmt.Sprintf("c%05d", rng.Intn(2500)), strconv.Itoa(rng.Intn(1000)),
			})
		}
		for i := 0; i < 10_000; i++ {
			returns = append(returns, query.Row{
				strconv.Itoa(i), fmt.Sprintf("c%05d", rng.Intn(2500)), strconv.Itoa(rng.Intn(200)),
			})
		}
		if _, err := cat.Create("sales", query.Schema{"id", "cell", "amount"}, sales, 4); err != nil {
			return nil, 0, err
		}
		if _, err := cat.Create("returns", query.Schema{"rid", "cell", "refund"}, returns, 3); err != nil {
			return nil, 0, err
		}

		var run func(*query.Plan, func(*query.Result, error))
		if dag {
			dr, err := query.NewDAGRunner(env.FW, nil, cat)
			if err != nil {
				return nil, 0, err
			}
			dr.Mode = query.ViaDPlus
			run = dr.Run
		} else {
			r := query.NewRunner(env.FW, cat)
			r.Mode = query.ViaDPlus
			run = r.Run
		}
		var res *query.Result
		var qerr error
		var wall float64
		env.Eng.After(0, func() {
			submitted := env.Eng.Now()
			run(plan, func(r *query.Result, err error) {
				res, qerr = r, err
				wall = env.Eng.Now().Sub(submitted).Seconds()
				env.RM.Stop()
			})
		})
		env.Eng.RunUntil(sim.Time(1 << 42))
		if qerr != nil {
			return nil, 0, qerr
		}
		if res == nil {
			return nil, 0, fmt.Errorf("query did not finish")
		}
		name := "chain"
		if dag {
			name = "dag"
		}
		fmt.Printf("%-5s %d stages in %.2f virtual seconds, max %d in flight, winners %v",
			name, res.Stages, wall, res.MaxConcurrent, res.Winners)
		if res.Recoveries > 0 {
			fmt.Printf(", %d lineage recoveries", res.Recoveries)
		}
		if res.AggParseErrors > 0 {
			fmt.Printf(", %d skipped aggregate values", res.AggParseErrors)
		}
		fmt.Println()
		if st := env.RT.Intermediates; st != nil && st.HDFSBytesAvoided > 0 {
			fmt.Printf("      intermediates: %d B kept out of HDFS (%d B in memory, %d B on producer disks)\n",
				st.HDFSBytesAvoided, st.MemBytes, st.DiskBytes)
		}
		return res, wall, nil
	}

	var chain, dag *query.Result
	var chainWall, dagWall float64
	var err error
	if exec != "dag" {
		if chain, chainWall, err = runOne(false); err != nil {
			return fmt.Errorf("chain: %w", err)
		}
	}
	if exec != "chain" {
		if dag, dagWall, err = runOne(true); err != nil {
			return fmt.Errorf("dag: %w", err)
		}
	}
	if chain != nil && dag != nil {
		if len(chain.Rows) != len(dag.Rows) {
			return fmt.Errorf("chain returned %d rows, dag %d — results diverge", len(chain.Rows), len(dag.Rows))
		}
		fmt.Printf("dag vs chain: %.2fs vs %.2fs (%.1f%% faster), %d identical result rows\n",
			dagWall, chainWall, (chainWall-dagWall)/chainWall*100, len(dag.Rows))
	}
	show := chain
	if show == nil {
		show = dag
	}
	n := len(show.Rows)
	if !verbose && n > 5 {
		n = 5
	}
	fmt.Printf("result: %v (top %d of %d rows)\n", []string(show.Table.Schema), n, len(show.Rows))
	for _, r := range show.Rows[:n] {
		fmt.Printf("  %v\n", []string(r))
	}
	return nil
}

// observability groups the -trace-out/-metrics-out/-report/-series-out/
// -dash-out outputs.
type observability struct {
	TraceOut   string
	MetricsOut string
	Report     bool
	SeriesOut  string
	DashOut    string
}

func (o observability) enabled() bool {
	return o.TraceOut != "" || o.MetricsOut != "" || o.Report || o.flight()
}

func (o observability) flight() bool {
	return o.SeriesOut != "" || o.DashOut != ""
}

func run(job, mode, cluster string, files int, sizeMB float64, rows, samples int64, maps int, seed int64, workers int, verbose bool, traceN int, nodeFail string, svc shuffleSetting, memoOn bool, obs observability, est estimatorSetting) error {
	var setup bench.ClusterSetup
	switch cluster {
	case "A3x4":
		setup = bench.A3x4()
	case "A2x9":
		setup = bench.A2x9()
	default:
		return fmt.Errorf("unknown cluster %q", cluster)
	}
	setup.Seed = seed
	setup.HostWorkers = workers
	if svc.Enabled {
		setup.Params.ShuffleService = true
		setup.Params.ShuffleCodec = svc.Codec
	}
	setup.Params.MemoCache = memoOn
	faults, err := mapreduce.ParseNodeFaults(nodeFail)
	if err != nil {
		return err
	}
	setup.NodeFaults = faults

	var variant bench.Variant
	speculative := false
	switch mode {
	case "hadoop":
		variant = bench.VariantHadoop()
	case "uber":
		variant = bench.VariantUber()
	case "dplus":
		variant = bench.VariantDPlus()
	case "uplus":
		variant = bench.VariantUPlus()
	case "speculative":
		variant = bench.VariantDPlus() // D+ scheduler + framework; both modes race
		variant.UOpts = core.FullUPlus()
		speculative = true
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	env, err := bench.NewEnv(setup, variant)
	if err != nil {
		return err
	}
	defer env.Close()
	var tlog *trace.Log
	if obs.enabled() {
		limit := 1 << 16
		if traceN > limit {
			limit = traceN
		}
		env.EnableObservability(limit)
		if obs.flight() {
			// Single-job mode has no admission queue, so the recorder runs
			// without an SLO tracker: cluster gauges, counter rates, and the
			// engine self-profile still fill the dashboard.
			env.EnableFlightRecorder(flight.SLOConfig{})
		}
		if traceN > 0 {
			tlog = env.Trace
		}
	} else if traceN > 0 {
		tlog = trace.New(env.Eng, traceN)
		env.RM.Trace = tlog
		env.RT.Trace = tlog
	}

	var spec *mapreduce.JobSpec
	switch job {
	case "wordcount":
		names, err := workloads.GenerateWordCountInput(env.DFS, env.Cluster, "/in/wc", workloads.WordCountConfig{
			Files: files, FileBytes: int64(sizeMB * (1 << 20)), Seed: seed,
		})
		if err != nil {
			return err
		}
		spec = workloads.WordCountSpec("wordcount", names, "/out", false)
	case "terasort":
		names, err := workloads.TeraGen(env.DFS, env.Cluster, "/in/ts", workloads.TeraGenConfig{
			Rows: rows, Files: files, Seed: seed,
		})
		if err != nil {
			return err
		}
		spec, err = workloads.TeraSortSpec(env.DFS, "terasort", names, "/out", 1)
		if err != nil {
			return err
		}
	case "pi":
		names, err := workloads.GeneratePiInput(env.DFS, env.Cluster, "/in/pi", workloads.PiConfig{
			Maps: maps, Samples: samples / int64(maps),
		})
		if err != nil {
			return err
		}
		spec = workloads.PiSpec(env.DFS, "pi", names, "/out")
	default:
		return fmt.Errorf("unknown job %q", job)
	}

	var prof *profiler.JobProfile
	var winner string
	var root trace.SpanID
	if speculative {
		env.FW.Predict = est.Predict
		repeat := est.Repeat
		if repeat < 1 {
			repeat = 1
		}
		var res *core.SpecResult
		for i := 0; i < repeat; i++ {
			run := *spec
			if repeat > 1 {
				// Fresh job keys keep the exact-match history out of the
				// picture: only the class estimator can pre-decide, which is
				// what -repeat is for. Earlier runs land in scratch outputs;
				// the final one writes the real /out the verifiers read.
				run.Name = fmt.Sprintf("%s#run%d", spec.Name, i+1)
				run.JobKey = run.Name
				if i < repeat-1 {
					run.OutputFile = fmt.Sprintf("%s.run%d", spec.OutputFile, i+1)
				}
			}
			res = nil
			first := i == 0
			env.Eng.After(0, func() {
				if !first {
					env.RM.Start() // the previous run's completion stopped it
				}
				env.FW.SubmitSpeculative(&run, func(r *core.SpecResult) {
					res = r
					env.RM.Stop()
					// Stop the recorder with the first completion so its
					// ticker doesn't keep the event queue alive to the
					// horizon; with -repeat the flight artifacts therefore
					// cover run 1.
					env.Flight.StopIfRunning()
				})
			})
			env.Eng.RunUntil(sim.Time(1 << 42))
			if res == nil {
				return fmt.Errorf("job did not finish")
			}
			if res.Result.Err != nil {
				return res.Result.Err
			}
			if repeat > 1 {
				how := "raced"
				switch {
				case res.Winner == core.ModeMemo:
					how = "served from the memo cache"
				case res.FromPrediction:
					how = "pre-decided (class estimator)"
				case res.FromHistory:
					how = "pre-decided (exact history)"
				}
				fmt.Printf("run %d/%d: winner=%s %s elapsed=%.2fs\n",
					i+1, repeat, res.Winner, how, res.Result.Profile.Elapsed().Seconds())
			}
		}
		prof = res.Result.Profile
		winner = string(res.Winner)
		root = res.Span
		fmt.Printf("speculative execution: winner=%s fromHistory=%v fromPrediction=%v\n",
			res.Winner, res.FromHistory, res.FromPrediction)
		if res.EstimateD > 0 {
			fmt.Printf("estimates: t_d=%.2fs t_u=%.2fs (decided at %s)\n",
				res.EstimateD.Seconds(), res.EstimateU.Seconds(), res.DecidedAt)
		}
		if res.FromPrediction {
			fmt.Printf("predicted runtime: %.2fs (actual %.2fs)\n",
				res.Predicted.Seconds(), prof.Elapsed().Seconds())
		}
		if est.ShowHistory {
			printHistory(env.FW.History)
		}
	} else {
		r, err := env.Run(variant, spec)
		if err != nil {
			return err
		}
		prof = r.Profile
		winner = r.Mode
		root = prof.Span
	}

	fmt.Printf("job=%s mode=%s cluster=%s\n", job, winner, cluster)
	fmt.Printf("completion time: %.2f virtual seconds\n", prof.Elapsed().Seconds())
	fmt.Printf("timeline: submitted=%s amReady=%s firstTask=%s mapsDone=%s done=%s\n",
		prof.SubmittedAt, prof.AMReadyAt, prof.FirstTaskAt, prof.MapsDoneAt, prof.DoneAt)
	s := prof.Summarize()
	fmt.Printf("profile: %s\n", s)

	switch job {
	case "pi":
		if est, err := workloads.PiEstimate(env.DFS, "/out"); err == nil {
			fmt.Printf("pi estimate: %.6f\n", est)
		}
	case "terasort":
		if err := workloads.VerifyTeraSortOutput(env.DFS, "/out", 1, rows); err == nil {
			fmt.Printf("terasort output verified: %d rows in total order\n", rows)
		} else {
			return fmt.Errorf("output verification failed: %w", err)
		}
	}

	reg := metrics.New()
	reg.Set("yarn.am_heartbeats", env.RM.Metrics.AMHeartbeats)
	reg.Set("yarn.nm_heartbeats", env.RM.Metrics.NMHeartbeats)
	reg.Set("yarn.allocations", env.RM.Metrics.Allocations)
	reg.Set("yarn.node_local", env.RM.Metrics.ByLocality[yarn.NodeLocal])
	reg.Set("yarn.rack_local", env.RM.Metrics.ByLocality[yarn.RackLocal])
	reg.Set("yarn.any_locality", env.RM.Metrics.ByLocality[yarn.Any])
	reg.Set("hdfs.bytes_read", env.DFS.BytesRead)
	reg.Set("hdfs.bytes_written", env.DFS.BytesWritten)
	reg.Set("hdfs.local_reads", env.DFS.LocalReads)
	reg.Set("hdfs.rack_reads", env.DFS.RackReads)
	reg.Set("hdfs.remote_reads", env.DFS.RemoteReads)
	fmt.Println("metrics:")
	reg.Dump(os.Stdout)

	if tlog != nil {
		fmt.Printf("trace (last %d events):\n", traceN)
		tlog.Dump(os.Stdout)
	}

	if obs.enabled() {
		rep, err := report.Analyze(env.Trace, root)
		if err != nil {
			return err
		}
		if obs.Report {
			fmt.Println("phase report:")
			if err := rep.Render(os.Stdout); err != nil {
				return err
			}
		}
		if obs.TraceOut != "" {
			f, err := os.Create(obs.TraceOut)
			if err != nil {
				return err
			}
			// With the recorder on, its series ride along as Chrome counter
			// lanes so Perfetto shows gauges above the span tree.
			var werr error
			if env.Flight != nil {
				werr = env.Trace.WriteChromeTraceCounters(f, env.Flight.CounterSeries())
			} else {
				werr = env.Trace.WriteChromeTrace(f)
			}
			if werr != nil {
				f.Close()
				return werr
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("chrome trace written to %s (%d spans, %d dropped events)\n",
				obs.TraceOut, len(env.Trace.Spans()), env.Trace.Dropped())
		}
		if obs.MetricsOut != "" {
			f, err := os.Create(obs.MetricsOut)
			if err != nil {
				return err
			}
			if err := report.WriteJSON(f, rep, env.Reg); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("metrics summary written to %s\n", obs.MetricsOut)
		}
		if obs.SeriesOut != "" {
			f, err := os.Create(obs.SeriesOut)
			if err != nil {
				return err
			}
			if err := env.Flight.WritePrometheus(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("series dump written to %s (%d samples, %d series)\n",
				obs.SeriesOut, env.Flight.Samples(), len(env.Flight.SeriesNames()))
		}
		if obs.DashOut != "" {
			d := env.FlightDashboard(fmt.Sprintf("job=%s mode=%s cluster=%s", job, winner, cluster), 15)
			eb := env.Flight.SelfProfiler().Summary()
			d.Engine = &eb
			f, err := os.Create(obs.DashOut)
			if err != nil {
				return err
			}
			if err := flight.WriteDashboard(f, d); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("dashboard written to %s\n", obs.DashOut)
		}
	}

	if verbose {
		fmt.Println("tasks:")
		for _, tp := range prof.Tasks {
			fmt.Printf("  %-7s %2d on %-8s read=%-8v compute=%-8v spill=%-8v merge=%-8v in=%-9d out=%-9d local=%v\n",
				tp.Kind, tp.Index, tp.Node, tp.ReadDur.Round(1e6), tp.ComputeDur.Round(1e6),
				tp.SpillDur.Round(1e6), tp.MergeDur.Round(1e6), tp.InputBytes, tp.OutputBytes, tp.NodeLocal)
		}
	}
	return nil
}
